// extracheckers demonstrates the framework's generality (§5.5): the same
// engine runs the three additional checkers — double lock/unlock, array
// index underflow, division by zero — each defined by a ~100-line FSM.
package main

import (
	"fmt"
	"log"

	pata "repro"
)

const src = `
struct mutex { int owner; };

/* Double lock on the retry path. */
static int txn_commit(struct mutex *m, int retry) {
	mutex_lock(m);
	if (retry)
		mutex_lock(m);
	mutex_unlock(m);
	return 0;
}

/* Negative index used on the wrong branch. */
static int ring_get(int *ring, int head) {
	if (head < 0)
		return ring[head];
	return ring[head];
}

/* Division by a zero-checked divisor. */
static int rate_calc(int total, int period) {
	if (period == 0)
		return total / period;
	return total / period;
}

/* All three done right: no reports. */
static int all_good(struct mutex *m, int *ring, int head, int period) {
	int v = 0;
	mutex_lock(m);
	if (head >= 0)
		v = ring[head];
	if (period != 0)
		v = v / period;
	mutex_unlock(m);
	return v;
}
`

func main() {
	res, err := pata.AnalyzeSources("extra", map[string]string{"extra.c": src},
		pata.Config{Checkers: []string{"dl", "aiu", "dbz"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== §5.5 extension checkers: DL, AIU, DBZ ==")
	fmt.Print(res)
	fmt.Println("\nEach checker is a small FSM plugged into the same alias-aware engine;")
	fmt.Println("the guarded variants in all_good() produce no reports.")
}
