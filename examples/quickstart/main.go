// Quickstart: analyze a small driver-style snippet with the public API and
// print the validated bug reports.
package main

import (
	"fmt"
	"log"

	pata "repro"
)

const src = `
/* A classic kernel pattern: the probe callback is registered through an
 * ops struct, so no function in this file calls it — it is an analysis
 * entry point whose parameter may be NULL. */
struct uart_port { int base; int irq; };

static int serial_probe(struct uart_port *port, int flags) {
	int rc = 0;
	if (!port) {
		/* BUG: dereference on the NULL branch. */
		log_err(port->irq);
		return -19;
	}
	if (flags & 1)
		rc = port->base;
	return rc;
}

static int serial_leak(int len) {
	char *buf = (char *)kmalloc(len);
	if (buf == NULL)
		return -12;
	if (len > 4096)
		return -22;   /* BUG: buf leaks on this error path. */
	kfree(buf);
	return 0;
}

static struct uart_ops serial_ops = { .probe = serial_probe };
`

func main() {
	res, err := pata.AnalyzeSources("quickstart", map[string]string{"serial.c": src}, pata.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== quickstart: PATA on a driver-style snippet ==")
	fmt.Print(res)
	fmt.Printf("\nStage 2 dropped %d infeasible candidate(s); alias awareness saved %d typestate transitions.\n",
		res.Stats.FalseDropped, res.Stats.TypestatesUnaware-res.Stats.Typestates)
}
