// apirules demonstrates the configurable API-pairing checker — the §7
// "API-rule checking" application of PATA's alias analysis: acquire/release
// rules (request_region/release_region, of_node_get/of_node_put, clk
// enable/disable) are checked per alias class, so releases through aliases
// balance correctly and violations are validated path-sensitively.
package main

import (
	"fmt"
	"log"

	pata "repro"
)

const src = `
struct device_node { int reg; };
struct clkdev { int rate; };

/* BUG: np is not put on the error path. */
static int dt_probe(int base, int bad) {
	struct device_node *np = (struct device_node *)of_find_node_by_name(base);
	if (!np)
		return -19;
	if (bad)
		return -5;
	apply_reg(np->reg);
	of_node_put(np);
	return 0;
}

/* OK: the release happens through an alias of the handle. */
static int dt_probe_aliased(int base) {
	struct device_node *np = (struct device_node *)of_find_node_by_name(base);
	struct device_node *handle = np;
	if (!np)
		return -19;
	apply_reg(np->reg);
	of_node_put(handle);
	return 0;
}

/* BUG: the clock is disabled twice on the retry path. */
static int start_clock(struct clkdev *c, int retry) {
	clk_prepare_enable(c);
	run_with_clock(c->rate);
	clk_disable_unprepare(c);
	if (retry)
		clk_disable_unprepare(c);
	return 0;
}
`

func main() {
	// The public API exposes pairing through the engine-level checkers; the
	// "all" selection includes the defaults, but here we want ONLY pairing
	// reports, so we use the dedicated configuration.
	res, err := pata.AnalyzeSourcesWithPairs("apirules", map[string]string{"dt.c": src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== API-pairing rules (§7 application) ==")
	fmt.Print(res)
	fmt.Println("\nThe aliased release in dt_probe_aliased is balanced — only the")
	fmt.Println("genuine violations report, each with a validated witness path.")
}
