// corpusscan generates the four synthetic OS corpora, runs PATA and the
// baseline stand-ins over each, and scores everything against the known
// ground truth — a miniature of the paper's Tables 5 and 8.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/baselines/lint"
	"repro/internal/exp"
	"repro/internal/oscorpus"
	"repro/internal/report"
)

func main() {
	t := &report.Table{Header: []string{"OS", "Tool", "Found", "Real", "FP%"}}
	for _, spec := range oscorpus.AllSpecs() {
		c := oscorpus.Generate(spec)
		runs := []func() (*exp.ToolRun, error){
			func() (*exp.ToolRun, error) { return exp.RunPATA(c, exp.PATAConfig(), "pata") },
			func() (*exp.ToolRun, error) { return exp.RunPATA(c, exp.NAConfig(), "pata-na") },
			func() (*exp.ToolRun, error) { return exp.RunLintTool(c, lint.Cppcheck{}) },
			func() (*exp.ToolRun, error) { return exp.RunLintTool(c, lint.Smatch{}) },
			func() (*exp.ToolRun, error) { return exp.RunSVFNull(c) },
			func() (*exp.ToolRun, error) { return exp.RunSaberLike(c) },
		}
		for _, run := range runs {
			tr, err := run()
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(spec.Name, tr.Tool,
				fmt.Sprintf("%d", tr.Score.Found),
				fmt.Sprintf("%d/%d", tr.Score.Real, len(c.Truth)),
				fmt.Sprintf("%.0f", tr.Score.FPRate()))
		}
	}
	fmt.Println("== corpus scan: PATA and baselines vs ground truth ==")
	t.Write(os.Stdout)
	fmt.Println("\n(Real column is matched-bugs / seeded-bugs; shapes mirror the paper's Tables 5-8.)")
}
