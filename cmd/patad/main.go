// Command patad is the resident PATA analysis daemon: it loads a mini-C
// module once and serves analysis over a newline-delimited JSON protocol
// on stdin/stdout and/or a Unix socket, keeping the content-addressed
// incremental cache warm across requests.
//
// Usage:
//
//	patad [flags] file.c [file2.c ...]
//	patad [flags] -dir path/to/sources -socket /tmp/patad.sock
//
// Protocol (one JSON object per line; see internal/patad):
//
//	{"op":"analyze","id":"a1","timeout_ms":5000}
//	{"op":"invalidate","id":"i1","sources":{"f.c":"..."},"remove":["g.c"]}
//	{"op":"status","id":"s1"}   {"op":"ping"}   {"op":"shutdown"}
//
// SIGTERM (or the shutdown op) drains gracefully and exits 0; with
// -cache-dir even a kill -9 mid-run restarts warm from the checksummed
// capsule store.
package main

import (
	"os"

	"repro/internal/patad"
)

func main() {
	os.Exit(patad.Main(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
