// Command patabench regenerates the paper's evaluation tables and figures
// on the synthetic OS corpora.
//
// Usage:
//
//	patabench -exp table4|table5|table6|table7|table8|fig11|fpaudit|cases|fsm|pruning|summaries|degrade|daemon|all
//	patabench -exp bench [-bench-out BENCH_pipeline.json]
//	patabench -exp incremental [-incremental-out BENCH_incremental.json]
//	patabench -exp validate [-validate-out BENCH_validate.json]
//	patabench -exp scaling [-scaling-out BENCH_scaling.json]
//	patabench -exp smoke
//	patabench -exp validate-smoke
//	patabench -exp scaling-smoke
//
// -cpuprofile/-memprofile write pprof profiles of the selected experiment,
// for chasing regressions in the analysis hot loops. -blockprofile and
// -mutexprofile are the contention lens for the parallel experiments: they
// show time parked on channels and which locks workers convoy on.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/exp"
	"repro/internal/profiles"
)

func main() {
	which := flag.String("exp", "all", "experiment: table4, table5, table6, table7, table8, fig11, fpaudit, extensions, cases, fsm, pruning, summaries, degrade, daemon, bench, incremental, validate, scaling, or all")
	benchOut := flag.String("bench-out", "BENCH_pipeline.json", "output path for -exp bench")
	incOut := flag.String("incremental-out", "BENCH_incremental.json", "output path for -exp incremental")
	valOut := flag.String("validate-out", "BENCH_validate.json", "output path for -exp validate")
	scalingOut := flag.String("scaling-out", "BENCH_scaling.json", "output path for -exp scaling")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile (channel/select waits) at exit to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile at exit to this file")
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the running experiment through the engine's
	// context path; the run loop then stops between experiments and exits
	// 130 without writing a partial BENCH json. A second signal kills hard
	// (NotifyContext restores default handling after the first).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	exp.SetBaseContext(ctx)

	prof := &profiles.Set{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "patabench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "patabench:", err)
		}
	}()

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "patabench: %s: %v\n", name, err)
		if perr := prof.Stop(); perr != nil {
			fmt.Fprintln(os.Stderr, "patabench:", perr)
		}
		os.Exit(1)
	}
	interrupted := func() {
		fmt.Fprintln(os.Stderr, "patabench: interrupted")
		if perr := prof.Stop(); perr != nil {
			fmt.Fprintln(os.Stderr, "patabench:", perr)
		}
		os.Exit(130)
	}
	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := f(); err != nil {
			fail(name, err)
		}
		// A cancelled experiment returns a partial (well-formed) table, not
		// an error; stop the sequence here rather than printing the rest of
		// the suite against a dead context.
		if ctx.Err() != nil {
			interrupted()
		}
		fmt.Println()
	}

	run("fsm", func() error { exp.FSMs(os.Stdout); return nil })
	run("table4", func() error { exp.Table4(os.Stdout); return nil })
	run("table5", func() error { _, err := exp.Table5(os.Stdout); return err })
	run("fig11", func() error { _, err := exp.Fig11(os.Stdout); return err })
	run("table6", func() error { _, err := exp.Table6(os.Stdout); return err })
	run("table7", func() error { _, err := exp.Table7(os.Stdout); return err })
	run("table8", func() error { _, err := exp.Table8(os.Stdout); return err })
	run("fpaudit", func() error { _, err := exp.FPAudit(os.Stdout); return err })
	run("extensions", func() error { _, err := exp.Extensions(os.Stdout); return err })
	run("cases", func() error { _, err := exp.Cases(os.Stdout); return err })
	run("pruning", func() error { _, err := exp.PruningTable(os.Stdout); return err })
	run("summaries", func() error { _, err := exp.SummaryTable(os.Stdout); return err })
	run("degrade", func() error { _, err := exp.DegradeTable(os.Stdout); return err })
	run("daemon", func() error { _, err := exp.DaemonTable(os.Stdout); return err })

	// bench, incremental, validate and scaling write BENCH_*.json files, so
	// they only run when asked for explicitly, never under -exp all.
	if *which == "bench" {
		if err := exp.WriteBenchJSON(os.Stdout, *benchOut); err != nil {
			fail("bench", err)
		}
	}
	if *which == "incremental" {
		if err := exp.WriteIncrementalJSON(os.Stdout, *incOut); err != nil {
			fail("incremental", err)
		}
	}
	if *which == "validate" {
		if err := exp.WriteValidateJSON(os.Stdout, *valOut); err != nil {
			fail("validate", err)
		}
	}
	if *which == "scaling" {
		if err := exp.WriteScalingJSON(os.Stdout, *scalingOut); err != nil {
			fail("scaling", err)
		}
	}
	// smoke is the CI wall-clock gate for the adaptive cost model; it runs
	// only when selected so -exp all stays timing-independent.
	if *which == "smoke" {
		if err := exp.BenchSmoke(os.Stdout); err != nil {
			fail("smoke", err)
		}
	}
	// validate-smoke is the CI gate for batched Stage-2 validation: byte-
	// identical reports and solver time within 1.1x of per-candidate mode.
	if *which == "validate-smoke" {
		if err := exp.ValidateSmoke(os.Stdout); err != nil {
			fail("validate-smoke", err)
		}
	}
	// scaling-smoke is the CI gate for parallel scaling: workers=4 must beat
	// workers=1 by a CPU-count-aware floor with byte-identical reports.
	if *which == "scaling-smoke" {
		if err := exp.ScalingSmoke(os.Stdout); err != nil {
			fail("scaling-smoke", err)
		}
	}
	if ctx.Err() != nil {
		interrupted()
	}
}
