// Command patabench regenerates the paper's evaluation tables and figures
// on the synthetic OS corpora.
//
// Usage:
//
//	patabench -exp table4|table5|table6|table7|table8|fig11|fpaudit|cases|fsm|pruning|all
//	patabench -exp bench [-bench-out BENCH_pipeline.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment: table4, table5, table6, table7, table8, fig11, fpaudit, extensions, cases, fsm, pruning, bench, or all")
	benchOut := flag.String("bench-out", "BENCH_pipeline.json", "output path for -exp bench")
	flag.Parse()

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "patabench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fsm", func() error { exp.FSMs(os.Stdout); return nil })
	run("table4", func() error { exp.Table4(os.Stdout); return nil })
	run("table5", func() error { _, err := exp.Table5(os.Stdout); return err })
	run("fig11", func() error { _, err := exp.Fig11(os.Stdout); return err })
	run("table6", func() error { _, err := exp.Table6(os.Stdout); return err })
	run("table7", func() error { _, err := exp.Table7(os.Stdout); return err })
	run("table8", func() error { _, err := exp.Table8(os.Stdout); return err })
	run("fpaudit", func() error { _, err := exp.FPAudit(os.Stdout); return err })
	run("extensions", func() error { _, err := exp.Extensions(os.Stdout); return err })
	run("cases", func() error { _, err := exp.Cases(os.Stdout); return err })
	run("pruning", func() error { _, err := exp.PruningTable(os.Stdout); return err })

	// bench writes BENCH_pipeline.json, so it only runs when asked for
	// explicitly, never under -exp all.
	if *which == "bench" {
		if err := exp.WriteBenchJSON(os.Stdout, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "patabench: bench: %v\n", err)
			os.Exit(1)
		}
	}
}
