// Command pata analyzes mini-C source files with the PATA framework and
// prints bug reports.
//
// Usage:
//
//	pata [flags] file.c [file2.c ...]
//	pata [flags] -dir path/to/sources
//
// Flags:
//
//	-checkers npd,uva,ml   checkers to run (also: dl, aiu, dbz, all)
//	-dir DIR               analyze every .c file under DIR
//	-no-alias              run the PATA-NA alias-unaware variant (§5.4)
//	-no-validate           skip Stage-2 SMT path validation
//	-no-prune              disable Stage-1 infeasible-branch pruning
//	-no-memo               disable Stage-1 (block, state) memoization
//	-no-summaries          disable Stage-1 interprocedural callee summaries
//	-no-adaptive           disable the per-entry adaptive cost model
//	-no-batch-validate     disable batched prefix-sharing Stage-2 validation
//	-validate-backend B    Stage-2 solver backend: builtin, smtlib2, or smtlib2:CMD
//	-max-conts N           callee continuations per call (P2 cap; negative = unlimited)
//	-stats                 print engine statistics
//	-json                  emit machine-readable JSON
//	-unroll N              loop unroll factor (default 1, the paper's rule)
//	-workers N             Stage-1 analysis workers (0 = GOMAXPROCS, 1 = sequential)
//	-validate-workers N    Stage-2 validation workers (0 = GOMAXPROCS, 1 = sequential)
//	-entry-timeout D       wall-clock budget per entry function (0 = none)
//	-run-timeout D         wall-clock budget for the whole run (0 = none)
//	-max-retries N         degrade-ladder retries per sick entry (0 = default 1)
//	-cache-dir DIR         persist per-entry results in DIR for incremental re-runs
//	-cache-max-bytes N     evict least-recently-used cache entries past N bytes
//	-cpuprofile FILE       write a CPU profile of the analysis to FILE
//	-memprofile FILE       write an allocation profile at exit to FILE
//	-blockprofile FILE     write a goroutine blocking profile at exit to FILE
//	-mutexprofile FILE     write a mutex contention profile at exit to FILE
//
// Ctrl-C (or SIGTERM) cancels the analysis gracefully: the partial result is
// printed with its "incomplete analysis" section and a clean run exits 130.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	pata "repro"
	"repro/internal/profiles"
	"repro/internal/report"
)

func main() {
	checkers := flag.String("checkers", "", "comma-separated checkers: npd,uva,ml,dl,aiu,dbz or 'all' (default npd,uva,ml)")
	dir := flag.String("dir", "", "analyze every .c file under this directory")
	noAlias := flag.Bool("no-alias", false, "disable alias analysis (PATA-NA)")
	noValidate := flag.Bool("no-validate", false, "skip SMT path validation")
	noPrune := flag.Bool("no-prune", false, "disable Stage-1 on-the-fly infeasible-branch pruning")
	noMemo := flag.Bool("no-memo", false, "disable Stage-1 (block, state) subtree memoization")
	noSummaries := flag.Bool("no-summaries", false, "disable Stage-1 interprocedural callee summaries")
	noAdaptive := flag.Bool("no-adaptive", false, "disable the per-entry adaptive cost model (always run the full layer stack)")
	noBatchValidate := flag.Bool("no-batch-validate", false, "disable batched prefix-sharing Stage-2 validation (solve every candidate from scratch)")
	validateBackend := flag.String("validate-backend", "", "Stage-2 solver backend: builtin (default), smtlib2, or smtlib2:CMD ARGS to cross-check against an external SMT-LIB2 solver")
	maxConts := flag.Int("max-conts", 0, "callee continuations per call: the P2 cap (0 = default 2, negative = unlimited)")
	stats := flag.Bool("stats", false, "print engine statistics")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	unroll := flag.Int("unroll", 1, "loop unroll factor (paper default 1)")
	workers := flag.Int("workers", 0, "Stage-1 analysis workers (0 = GOMAXPROCS, 1 = sequential)")
	validateWorkers := flag.Int("validate-workers", 0, "Stage-2 validation workers (0 = GOMAXPROCS, 1 = sequential)")
	cacheDir := flag.String("cache-dir", "", "persist per-entry analysis results in this directory for incremental re-runs")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries once the cache exceeds this many bytes (0 = unlimited)")
	entryTimeout := flag.Duration("entry-timeout", 0, "wall-clock budget per entry function, e.g. 30s (0 = no deadline); sick entries retry on the degrade ladder and are reported as incomplete")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock budget for the whole analysis (0 = no deadline); on expiry the partial result is reported")
	maxRetries := flag.Int("max-retries", 0, "degrade-ladder retries for a timed-out or panicking entry (0 = default 1, negative = none)")
	witness := flag.Bool("witness", false, "print each bug's witness path and trigger values")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile at exit to this file (captures channel/backpressure stalls)")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile at exit to this file (captures lock convoys)")
	flag.Parse()

	cfg := pata.Config{
		NoAlias:                 *noAlias,
		SkipValidation:          *noValidate,
		NoPrune:                 *noPrune,
		NoMemo:                  *noMemo,
		NoSummaries:             *noSummaries,
		NoAdaptive:              *noAdaptive,
		MaxContinuationsPerCall: *maxConts,
		LoopUnroll:              *unroll,
		Workers:                 *workers,
		ValidateWorkers:         *validateWorkers,
		CacheDir:                *cacheDir,
		CacheMaxBytes:           *cacheMaxBytes,
		WitnessPaths:            *witness,
		EntryTimeout:            *entryTimeout,
		RunTimeout:              *runTimeout,
		MaxRetries:              *maxRetries,
		NoBatchValidate:         *noBatchValidate,
		ValidateBackend:         *validateBackend,
	}
	if *checkers != "" {
		cfg.Checkers = strings.Split(*checkers, ",")
	}

	prof := &profiles.Set{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "pata:", err)
		os.Exit(1)
	}

	// Ctrl-C / SIGTERM cancels the analysis through the engine's context
	// path: the run stops at the next bounded unit of work and the partial
	// result — with its "incomplete analysis" section — is still printed.
	// A second signal kills the process the default way (stop() restores
	// default handling once the analysis returns).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)

	var (
		res *pata.Result
		err error
	)
	switch {
	case *dir != "":
		res, err = pata.AnalyzeDirCtx(ctx, *dir, cfg)
	case flag.NArg() > 0:
		res, err = pata.AnalyzeFilesCtx(ctx, flag.Args(), cfg)
	default:
		fmt.Fprintln(os.Stderr, "usage: pata [flags] file.c ...  |  pata -dir DIR")
		flag.PrintDefaults()
		os.Exit(2)
	}
	interrupted := ctx.Err() != nil
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pata:", err)
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "pata: interrupted, reporting partial results")
	}

	// exit wraps os.Exit so the requested profiles are written first. An
	// interrupted clean run exits 130 (128+SIGINT convention) — "no bugs"
	// from a partial analysis is not a clean bill; bugs found still exit 3
	// (the finding stands even if the run was cut short).
	exit := func(code int) {
		if werr := prof.Stop(); werr != nil {
			fmt.Fprintln(os.Stderr, "pata:", werr)
			if code == 0 {
				code = 1
			}
		}
		if interrupted && code == 0 {
			code = 130
		}
		os.Exit(code)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Bugs       []pata.Bug             `json:"bugs"`
			Incomplete []pata.IncompleteEntry `json:"incomplete,omitempty"`
			Stats      pata.Stats             `json:"stats"`
		}{Bugs: res.Bugs, Incomplete: res.Incomplete, Stats: res.Stats}); err != nil {
			fmt.Fprintln(os.Stderr, "pata:", err)
			exit(1)
		}
		if len(res.Bugs) > 0 {
			exit(3)
		}
		exit(0)
	}
	if len(res.Bugs) == 0 {
		fmt.Println("no bugs found")
		// Result.String (the branch below) already renders the incomplete
		// section; without bugs it must still be visible.
		report.WriteIncomplete(os.Stdout, res.Incomplete)
	} else {
		fmt.Print(res)
		if *witness {
			for i, b := range res.Bugs {
				fmt.Printf("\n[%d] %s at %s:%d\n", i+1, b.Type, b.File, b.Line)
				if len(b.Trigger) > 0 {
					fmt.Printf("    trigger: %s\n", strings.Join(b.Trigger, ", "))
				}
				if len(b.AliasSet) > 0 {
					fmt.Printf("    alias set: %s\n", strings.Join(b.AliasSet, ", "))
				}
				for _, line := range b.Witness {
					fmt.Println("   ", line)
				}
			}
		}
	}
	if *stats {
		fmt.Println()
		report.WriteStats(os.Stdout, res.Stats)
	}
	if len(res.Bugs) > 0 {
		exit(3) // bugs found: non-zero for CI use
	}
	exit(0)
}
