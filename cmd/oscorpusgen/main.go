// Command oscorpusgen writes a synthetic OS corpus to disk for inspection
// or for analyzing with cmd/pata.
//
// Usage:
//
//	oscorpusgen -os linux|zephyr|riot|tencent|helper-heavy -out DIR [-truth]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/oscorpus"
)

func main() {
	osName := flag.String("os", "linux", "which corpus: linux, zephyr, riot, tencent, helper-heavy")
	out := flag.String("out", "", "output directory (required)")
	truth := flag.Bool("truth", false, "also write ground-truth.txt")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: oscorpusgen -os linux -out DIR")
		os.Exit(2)
	}

	var spec oscorpus.OSSpec
	switch *osName {
	case "linux":
		spec = oscorpus.LinuxSpec()
	case "zephyr":
		spec = oscorpus.ZephyrSpec()
	case "riot":
		spec = oscorpus.RIOTSpec()
	case "tencent":
		spec = oscorpus.TencentSpec()
	case "helper-heavy":
		spec = oscorpus.HelperHeavySpec()
	default:
		fmt.Fprintf(os.Stderr, "oscorpusgen: unknown OS %q\n", *osName)
		os.Exit(2)
	}

	c := oscorpus.Generate(spec)
	for name, src := range c.Sources {
		path := filepath.Join(*out, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fatal(err)
		}
	}
	if *truth {
		f, err := os.Create(filepath.Join(*out, "ground-truth.txt"))
		if err != nil {
			fatal(err)
		}
		for _, g := range c.Truth {
			fmt.Fprintf(f, "%s %s %s:%d category=%s interproc=%v alias=%v\n",
				g.ID, g.Type, g.File, g.Line, g.Category, g.Interprocedural, g.NeedsAlias)
		}
		for _, tr := range c.Traps {
			fmt.Fprintf(f, "%s TRAP(%s) %s %s:%d\n", tr.ID, tr.Mechanism, tr.Type, tr.File, tr.Line)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d files (%d lines, %d seeded bugs, %d traps) to %s\n",
		c.Files(), c.Lines, len(c.Truth), len(c.Traps), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oscorpusgen:", err)
	os.Exit(1)
}
