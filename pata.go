// Package pata is a path-sensitive and alias-aware typestate analysis
// framework for detecting OS bugs, reproducing the ASPLOS '22 paper
// "Path-Sensitive and Alias-Aware Typestate Analysis for Detecting OS Bugs"
// (Li, Bai, Sui, Hu).
//
// The analysis runs in two stages. Stage 1 walks every control-flow path of
// every entry function (functions without explicit callers, such as driver
// interface functions), maintaining a per-path alias graph and running
// typestate checkers where all variables of one alias set share a single
// state. Stage 2 deduplicates candidate bugs and validates each candidate's
// path with an SMT solver, mapping each alias set to one SMT symbol.
//
// Quick start:
//
//	res, err := pata.AnalyzeSources("demo", map[string]string{"demo.c": src}, pata.Config{})
//	for _, b := range res.Bugs {
//		fmt.Printf("%s %s:%d in %s\n", b.Type, b.File, b.Line, b.Function)
//	}
//
// Input programs are written in mini-C, a C subset covering the OS-code
// patterns the analysis targets (structs, pointers, goto-based error
// handling, direct calls); see internal/minicc for the exact surface.
package pata

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/acache"
	"repro/internal/core"
	"repro/internal/minicc"
	"repro/internal/pathval"
	"repro/internal/report"
	"repro/internal/typestate"
)

// Config selects checkers and analysis behaviour. The zero value runs the
// paper's main configuration: NPD+UVA+ML checkers, path-based aliasing, and
// SMT path validation.
type Config struct {
	// Checkers: any of "npd", "uva", "ml", "dl", "aiu", "dbz", "uaf"; nil
	// selects the paper's core trio (npd, uva, ml). "all" selects all
	// seven.
	Checkers []string
	// NoAlias switches to the paper's PATA-NA sensitivity variant (§5.4).
	NoAlias bool
	// SkipValidation disables Stage 2 (possible bugs are reported
	// unfiltered).
	SkipValidation bool
	// NoPrune disables the Stage-1 on-the-fly feasibility pruning
	// (default on): without it, provably contradictory branch subtrees
	// are explored and their candidates are left for Stage-2 validation
	// to drop.
	NoPrune bool
	// NoMemo disables the Stage-1 (block, state) memoization (default
	// on): without it, repeated identical basic-block configurations are
	// re-explored.
	NoMemo bool
	// NoSummaries disables the Stage-1 interprocedural callee summaries
	// (default on): without them, every call-site activation re-walks the
	// callee even when a recorded activation with the same observable state
	// could be replayed.
	NoSummaries bool
	// NoAdaptive disables the per-entry adaptive cost model (default on):
	// without it, every entry runs the full configured layer stack even
	// when the layers' bookkeeping demonstrably costs more than the
	// exploration they save. Reports are identical either way; only
	// wall-clock changes.
	NoAdaptive bool
	// MaxCallDepth bounds interprocedural inlining (default 8).
	MaxCallDepth int
	// MaxPathsPerEntry bounds path enumeration per entry function
	// (default 4096).
	MaxPathsPerEntry int
	// MaxContinuationsPerCall is the P2 path-explosion mitigation
	// (default 2; -1 for unlimited).
	MaxContinuationsPerCall int
	// LoopUnroll is how many times loops/recursion are unrolled per path
	// (default 1, the paper's rule; higher values trade time for coverage
	// of multi-iteration bugs, §7).
	LoopUnroll int
	// Workers sets Stage-1 concurrency: N > 1 analyzes entry functions with
	// N concurrent engines, 1 forces the sequential engine, and 0 or
	// negative (the default) selects GOMAXPROCS. Findings are identical to
	// a sequential run; only wall-clock changes. The same convention holds
	// everywhere a worker count appears (cmd flags, core.RunParallel,
	// ValidateWorkers): <= 0 means GOMAXPROCS, 1 means sequential.
	Workers int
	// ValidateWorkers sets how many concurrent Stage-2 validation workers
	// the pipelined scheduler uses: 0 or negative selects GOMAXPROCS, 1
	// forces single-threaded validation. It applies whenever the pipelined
	// scheduler runs (any non-sequential Workers value, an incremental
	// cache, timeouts, or a cancellable context). Candidate bugs stream
	// into the validator pool while path exploration is still running,
	// overlapping SMT solving with Stage 1.
	ValidateWorkers int
	// WitnessPaths renders each bug's witness path (source lines with
	// branch directions) into Bug.Witness.
	WitnessPaths bool
	// CacheDir, when non-empty, enables content-addressed incremental
	// analysis: per-entry results and Stage-2 verdicts persist in this
	// directory, keyed by the fingerprints of every function the entry can
	// reach plus the analysis configuration. A warm re-run over unchanged
	// sources replays from the cache — the findings are byte-identical to
	// a cold run — and after an edit only entries that can reach a changed
	// function re-analyze. The directory is created if missing; corrupted
	// or stale files silently fall back to cold analysis.
	CacheDir string
	// CacheMaxBytes caps the cache directory's total size; least-recently
	// used capsules are evicted past it. 0 means unlimited. Ignored when
	// CacheDir is empty.
	CacheMaxBytes int64
	// EntryTimeout bounds the wall-clock spent on a single entry function
	// (Stage-1 exploration attempt, and each Stage-2 candidate solve). An
	// entry that exceeds it is retried down the degrade ladder with tighter
	// budgets and, if still failing, reported in Result.Incomplete instead
	// of aborting the run. 0 means no per-entry deadline.
	EntryTimeout time.Duration
	// RunTimeout bounds the whole analysis; when it expires, entries not
	// yet finished are reported as cancelled in Result.Incomplete and the
	// findings so far are returned. 0 means no overall deadline.
	RunTimeout time.Duration
	// MaxRetries is how many degrade-ladder rungs a timed-out or panicking
	// entry is retried on (each rung shrinks the path/step budgets 8×,
	// deeper rungs also halve the inlining depth). 0 means the default of
	// one retry; negative disables retries.
	MaxRetries int
	// ValidateBackend selects the Stage-2 solver backend: "" or "builtin"
	// for the built-in SMT-lite solver, "smtlib2" to additionally render
	// each constraint system to SMT-LIB2 (emit-only cross-check), or
	// "smtlib2:CMD [ARGS...]" to pipe the script to an external solver
	// process (e.g. "smtlib2:z3 -in") whose check-sat answer is
	// cross-checked against the builtin verdict.
	ValidateBackend string
	// NoBatchValidate disables batched prefix-sharing Stage-2 validation
	// (default on): without it, every candidate solves its path condition
	// from scratch even when same-entry candidates share long condition
	// prefixes. Reports are identical either way; only wall-clock changes.
	NoBatchValidate bool
}

// Bug is one validated finding.
type Bug struct {
	// Type is "NPD", "UVA", "ML", "DL", "AIU" or "DBZ".
	Type string
	File string
	Line int
	// Function contains the buggy instruction; EntryFunction is the
	// analysis root whose path triggers it.
	Function      string
	EntryFunction string
	// Category is the OS part when the source carries one (corpus runs).
	Category string
	// PathSteps is the length of the witness path.
	PathSteps int
	// Validated is true when Stage-2 SMT validation confirmed feasibility.
	Validated bool
	// Trigger holds concrete input values driving the witness path (from
	// the Stage-2 solver model), e.g. "n = 6".
	Trigger []string
	// AliasSet holds the access paths of the affected alias class.
	AliasSet []string
	// Witness holds the rendered witness path when Config.WitnessPaths is
	// set.
	Witness []string
}

// Stats re-exports the engine counters (Table 5's metrics).
type Stats = core.Stats

// IncompleteEntry re-exports the engine's record of one entry function
// whose analysis stopped early (timeout, contained panic, budget trip, or
// cancellation).
type IncompleteEntry = core.IncompleteEntry

// Result of one analysis.
type Result struct {
	Bugs  []Bug
	Stats Stats
	// Incomplete lists entry functions whose analysis is partial. Findings
	// in Bugs are exact for every entry NOT listed here; for listed entries
	// the analysis is a lower bound (bugs may have been missed).
	Incomplete []IncompleteEntry
}

// CheckerNames lists the valid Config.Checkers values. The first six are
// the paper's checkers; "uaf" is this implementation's use-after-free
// extension (§8 motivates typestate UAF detection).
func CheckerNames() []string { return []string{"npd", "uva", "ml", "dl", "aiu", "dbz", "uaf"} }

func checkersFor(names []string) ([]typestate.Checker, error) {
	if len(names) == 0 {
		return typestate.CoreCheckers(), nil
	}
	if len(names) == 1 && names[0] == "all" {
		return typestate.AllCheckers(), nil
	}
	var out []typestate.Checker
	for _, n := range names {
		switch strings.ToLower(n) {
		case "npd":
			out = append(out, typestate.NewNPD())
		case "uva":
			out = append(out, typestate.NewUVA())
		case "ml":
			out = append(out, typestate.NewML())
		case "dl":
			out = append(out, typestate.NewDL())
		case "aiu":
			out = append(out, typestate.NewAIU())
		case "dbz":
			out = append(out, typestate.NewDBZ())
		case "uaf":
			out = append(out, typestate.NewUAF())
		default:
			return nil, fmt.Errorf("pata: unknown checker %q (valid: %s, or \"all\")",
				n, strings.Join(CheckerNames(), ", "))
		}
	}
	return out, nil
}

func (c Config) engineConfig() (core.Config, error) {
	checkers, err := checkersFor(c.Checkers)
	if err != nil {
		return core.Config{}, err
	}
	ec := core.Config{
		Checkers:                checkers,
		MaxCallDepth:            c.MaxCallDepth,
		MaxPathsPerEntry:        c.MaxPathsPerEntry,
		MaxContinuationsPerCall: c.MaxContinuationsPerCall,
		LoopUnroll:              c.LoopUnroll,
		ValidateWorkers:         c.ValidateWorkers,
		NoPrune:                 c.NoPrune,
		NoMemo:                  c.NoMemo,
		NoSummaries:             c.NoSummaries,
		NoAdaptive:              c.NoAdaptive,
		EntryTimeout:            c.EntryTimeout,
		RunTimeout:              c.RunTimeout,
		MaxRetries:              c.MaxRetries,
		ValidateBackend:         c.ValidateBackend,
		NoBatchValidate:         c.NoBatchValidate,
	}
	if c.NoAlias {
		ec.Mode = core.ModeNoAlias
	}
	if !c.SkipValidation {
		v := pathval.New()
		if c.ValidateBackend != "" {
			be, err := pathval.BackendFromSpec(c.ValidateBackend)
			if err != nil {
				return core.Config{}, err
			}
			v.Backend = be
		}
		v.Install(&ec)
	}
	if c.CacheDir != "" {
		store, err := acache.Open(c.CacheDir, c.CacheMaxBytes)
		if err != nil {
			// An unusable cache directory degrades to an uncached run: the
			// cache is a pure accelerator, and refusing to analyze because
			// a disk path is read-only would be the wrong trade for a bug
			// finder.
			fmt.Fprintf(os.Stderr, "pata: cache disabled: %v\n", err)
		} else {
			ec.Cache = store
		}
	}
	return ec, nil
}

// AnalyzeSources analyzes a set of mini-C sources (file name → content) as
// one program.
func AnalyzeSources(name string, sources map[string]string, cfg Config) (*Result, error) {
	return AnalyzeSourcesCtx(context.Background(), name, sources, cfg)
}

// AnalyzeSourcesCtx is AnalyzeSources with a caller context: cancelling it
// (or its deadline expiring) stops the analysis at the next bounded unit of
// work and returns the partial result, with unfinished entries listed in
// Result.Incomplete as cancelled.
func AnalyzeSourcesCtx(ctx context.Context, name string, sources map[string]string, cfg Config) (*Result, error) {
	mod, err := minicc.LowerAll(name, sources)
	if err != nil {
		return nil, fmt.Errorf("pata: frontend: %w", err)
	}
	ec, err := cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	var res *core.Result
	// Per-entry isolation (timeouts, retries) lives in the parallel
	// scheduler's worker loop, so isolated configs route through it even
	// with one worker. Workers/ValidateWorkers use the unified convention
	// (<= 0 = GOMAXPROCS, 1 = sequential), so only an explicit 1 on both
	// stages bypasses the pipeline; RunParallelCtx itself falls back to the
	// sequential engine when the resolved counts come out 1/1 with nothing
	// to overlap, so single-CPU default runs stay on the sequential path.
	isolated := cfg.EntryTimeout > 0 || cfg.RunTimeout > 0
	if cfg.Workers != 1 || cfg.ValidateWorkers != 1 || ec.Cache != nil || isolated || ctx.Done() != nil {
		res = core.RunParallelCtx(ctx, mod, ec, cfg.Workers)
	} else {
		res = core.NewEngine(mod, ec).RunCtx(ctx)
	}
	return convert(res, cfg.WitnessPaths), nil
}

// AnalyzeFiles reads and analyzes the given mini-C files as one program.
func AnalyzeFiles(paths []string, cfg Config) (*Result, error) {
	return AnalyzeFilesCtx(context.Background(), paths, cfg)
}

// AnalyzeFilesCtx is AnalyzeFiles with a caller context; cancellation
// semantics are those of AnalyzeSourcesCtx.
func AnalyzeFilesCtx(ctx context.Context, paths []string, cfg Config) (*Result, error) {
	sources, err := ReadSources(paths)
	if err != nil {
		return nil, err
	}
	return AnalyzeSourcesCtx(ctx, "program", sources, cfg)
}

// AnalyzeDir analyzes every .c file under dir (recursively) as one program.
func AnalyzeDir(dir string, cfg Config) (*Result, error) {
	return AnalyzeDirCtx(context.Background(), dir, cfg)
}

// AnalyzeDirCtx is AnalyzeDir with a caller context; cancellation semantics
// are those of AnalyzeSourcesCtx.
func AnalyzeDirCtx(ctx context.Context, dir string, cfg Config) (*Result, error) {
	paths, err := SourcePaths(dir)
	if err != nil {
		return nil, err
	}
	return AnalyzeFilesCtx(ctx, paths, cfg)
}

// SourcePaths lists every .c file under dir (recursively), sorted — the
// file set AnalyzeDir analyzes, exposed so long-lived callers (the patad
// daemon) can load the same corpus a CLI run would.
func SourcePaths(dir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".c") {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("pata: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("pata: no .c files under %s", dir)
	}
	sort.Strings(paths)
	return paths, nil
}

// ReadSources reads the given files into the source map AnalyzeSources
// consumes, keyed by path exactly as AnalyzeFiles would (so reports from
// either entry point print identical file names).
func ReadSources(paths []string) (map[string]string, error) {
	sources := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("pata: %w", err)
		}
		sources[p] = string(data)
	}
	return sources, nil
}

// EngineConfig resolves the public configuration into the engine-level
// core.Config the scheduler consumes — the same resolution AnalyzeSources
// performs, exposed for module-internal hosts that drive core.RunParallelCtx
// directly over a retained module (the patad daemon). When CacheDir is set
// this opens the on-disk store as a side effect; a resident caller that
// wants to own the store's lifecycle (flush on drain, reuse across
// requests) should leave CacheDir empty and install core.Config.Cache
// itself.
func (c Config) EngineConfig() (core.Config, error) { return c.engineConfig() }

// ConvertResult converts an engine-level result into the public Result —
// the exact conversion AnalyzeSources applies, so hosts that run the engine
// directly render reports byte-identical to the library's.
func ConvertResult(res *core.Result, witness bool) *Result { return convert(res, witness) }

func convert(res *core.Result, witness bool) *Result {
	out := &Result{Stats: res.Stats, Incomplete: res.Incomplete}
	for _, b := range core.SortedBugs(res.Bugs) {
		pos := b.BugInstr.Position()
		pb := Bug{
			Type:          string(b.Type),
			File:          pos.File,
			Line:          pos.Line,
			Function:      b.InFn,
			EntryFunction: b.EntryFn,
			Category:      b.Category,
			PathSteps:     len(b.Path),
			Validated:     b.Validated,
			Trigger:       b.Trigger,
			AliasSet:      b.AliasSet,
		}
		if witness {
			var sb strings.Builder
			report.WritePath(&sb, b)
			for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
				pb.Witness = append(pb.Witness, strings.TrimSpace(line))
			}
		}
		out.Bugs = append(out.Bugs, pb)
	}
	return out
}

// FPRateHint returns the share of candidates Stage 2 dropped, a proxy for
// how much path validation contributed on this program.
func (r *Result) FPRateHint() float64 {
	total := r.Stats.FalseDropped + int64(len(r.Bugs))
	if total == 0 {
		return 0
	}
	return float64(r.Stats.FalseDropped) / float64(total)
}

// String renders a compact report.
func (r *Result) String() string {
	var b strings.Builder
	for i, bug := range r.Bugs {
		fmt.Fprintf(&b, "[%d] %s at %s:%d in %s() (entry %s, %d path steps",
			i+1, bug.Type, bug.File, bug.Line, bug.Function, bug.EntryFunction, bug.PathSteps)
		if bug.Validated {
			b.WriteString(", validated")
		}
		b.WriteString(")\n")
	}
	report.WriteIncomplete(&b, r.Incomplete)
	fmt.Fprintf(&b, "%d bugs; %d entries, %d paths, %d typestates, %d repeated dropped, %d false dropped\n",
		len(r.Bugs), r.Stats.EntryFunctions, r.Stats.PathsExplored,
		r.Stats.Typestates, r.Stats.RepeatedDropped, r.Stats.FalseDropped)
	return b.String()
}

// AnalyzeSourcesWithPairs analyzes sources with the configurable
// API-pairing checkers (typestate.CommonPairRules) instead of the default
// trio — the §7 "API-rule checking" application.
func AnalyzeSourcesWithPairs(name string, sources map[string]string) (*Result, error) {
	mod, err := minicc.LowerAll(name, sources)
	if err != nil {
		return nil, fmt.Errorf("pata: frontend: %w", err)
	}
	var checkers []typestate.Checker
	for _, r := range typestate.CommonPairRules() {
		checkers = append(checkers, typestate.NewPair(r))
	}
	ec := core.Config{Checkers: checkers}
	pathval.New().Install(&ec)
	res := core.NewEngine(mod, ec).Run()
	return convert(res, false), nil
}
