package pata

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestUnusableCacheDirDegradesToUncached pins the graceful-degradation
// contract at the API level: an unusable CacheDir warns and runs uncached
// instead of failing the analysis.
func TestUnusableCacheDirDegradesToUncached(t *testing.T) {
	base := t.TempDir()
	blocker := filepath.Join(base, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{CacheDir: filepath.Join(blocker, "cache")}
	res, err := AnalyzeSources("demo", map[string]string{"demo.c": demoSrc}, cfg)
	if err != nil {
		t.Fatalf("unusable cache dir failed the run: %v", err)
	}
	if len(res.Bugs) != 1 {
		t.Fatalf("bugs = %d, want 1", len(res.Bugs))
	}
	if res.Stats.CacheEntriesHit != 0 && res.Stats.CacheEntriesMiss != 0 {
		t.Errorf("run was not uncached: %+v", res.Stats)
	}
}

// TestEntryTimeoutHealthyRunUnchanged: a generous per-entry deadline routes
// through the isolation machinery but must not change findings on healthy
// code.
func TestEntryTimeoutHealthyRunUnchanged(t *testing.T) {
	src := map[string]string{"demo.c": demoSrc}
	plain, err := AnalyzeSources("demo", src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := AnalyzeSources("demo", src, Config{EntryTimeout: time.Minute, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != guarded.String() {
		t.Errorf("EntryTimeout changed a healthy run:\n--- plain\n%s--- guarded\n%s", plain, guarded)
	}
	if len(guarded.Incomplete) != 0 {
		t.Errorf("healthy run reported incomplete entries: %+v", guarded.Incomplete)
	}
}

// TestCancelledContextYieldsPartialResult: a pre-cancelled context returns a
// well-formed Result whose entries are all reported as cancelled.
func TestCancelledContextYieldsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnalyzeSourcesCtx(ctx, "demo", map[string]string{"demo.c": demoSrc}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) != 1 || res.Incomplete[0].Reason != "cancelled" {
		t.Fatalf("incomplete = %+v, want one cancelled entry", res.Incomplete)
	}
	if res.Stats.EntryFunctions != 1 {
		t.Errorf("EntryFunctions = %d, want 1", res.Stats.EntryFunctions)
	}
	out := res.String()
	if !strings.Contains(out, "incomplete analysis (1 entries):") ||
		!strings.Contains(out, "probe(): cancelled") {
		t.Errorf("report missing incomplete section:\n%s", out)
	}
}
