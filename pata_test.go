package pata

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const demoSrc = `
struct dev { int flags; };
int probe(struct dev *d) {
	if (!d)
		return d->flags;
	return 0;
}`

func TestAnalyzeSources(t *testing.T) {
	res, err := AnalyzeSources("demo", map[string]string{"demo.c": demoSrc}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 {
		t.Fatalf("bugs = %d, want 1", len(res.Bugs))
	}
	b := res.Bugs[0]
	if b.Type != "NPD" || b.File != "demo.c" || b.Line != 5 || !b.Validated {
		t.Errorf("bug = %+v", b)
	}
	if b.Function != "probe" || b.EntryFunction != "probe" {
		t.Errorf("function attribution: %+v", b)
	}
}

func TestAnalyzeSourcesCheckerSelection(t *testing.T) {
	src := map[string]string{"a.c": `
int rate(int total, int period) {
	if (period == 0)
		return total / period;
	return total / period;
}`}
	res, err := AnalyzeSources("m", src, Config{Checkers: []string{"dbz"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 || res.Bugs[0].Type != "DBZ" {
		t.Errorf("bugs = %+v", res.Bugs)
	}
	if _, err := AnalyzeSources("m", src, Config{Checkers: []string{"bogus"}}); err == nil {
		t.Error("unknown checker accepted")
	}
	if _, err := AnalyzeSources("m", src, Config{Checkers: []string{"all"}}); err != nil {
		t.Errorf("\"all\" rejected: %v", err)
	}
}

func TestAnalyzeSourcesNoAlias(t *testing.T) {
	src := map[string]string{"a.c": `
struct srv { int frnd; };
struct model { void *user_data; };
static void status(struct model *m) {
	struct srv *cfg = (struct srv *)m->user_data;
	use(cfg->frnd);
}
static void entry_fn(struct model *m) {
	struct srv *cfg = (struct srv *)m->user_data;
	if (!cfg)
		status(m);
}`}
	full, err := AnalyzeSources("m", src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	na, err := AnalyzeSources("m", src, Config{NoAlias: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Bugs) == 0 {
		t.Error("PATA should find the alias-chain bug")
	}
	if len(na.Bugs) >= len(full.Bugs) {
		t.Errorf("NoAlias should find fewer bugs: %d vs %d", len(na.Bugs), len(full.Bugs))
	}
}

func TestAnalyzeSourcesSkipValidation(t *testing.T) {
	src := map[string]string{"a.c": `
void func(char *p) {
	int x = 3;
	if (x == 5) {
		if (!p)
			use(*p);
	}
}`}
	// The dead x==5 branch is exactly what the default on-the-fly pruning
	// removes during Stage 1; disable it so the candidate reaches (or
	// skips) Stage-2 validation, which is what this test exercises.
	validated, err := AnalyzeSources("m", src, Config{NoPrune: true, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := AnalyzeSources("m", src, Config{SkipValidation: true, NoPrune: true, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(validated.Bugs) != 0 {
		t.Error("validation should drop the dead-code bug")
	}
	if len(raw.Bugs) == 0 {
		t.Error("without validation the candidate should be reported")
	}
	if raw.Bugs[0].Validated {
		t.Error("unvalidated bug marked validated")
	}
}

func TestAnalyzeFilesAndDir(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "drivers")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(sub, "demo.c")
	if err := os.WriteFile(file, []byte(demoSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeFiles([]string{file}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 {
		t.Errorf("AnalyzeFiles bugs = %d", len(res.Bugs))
	}
	res, err = AnalyzeDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 {
		t.Errorf("AnalyzeDir bugs = %d", len(res.Bugs))
	}
	if _, err := AnalyzeDir(t.TempDir(), Config{}); err == nil {
		t.Error("empty dir should error")
	}
}

func TestFrontendErrorSurfaces(t *testing.T) {
	_, err := AnalyzeSources("m", map[string]string{"bad.c": "int f( {"}, Config{})
	if err == nil || !strings.Contains(err.Error(), "frontend") {
		t.Errorf("err = %v", err)
	}
}

func TestResultString(t *testing.T) {
	res, err := AnalyzeSources("demo", map[string]string{"demo.c": demoSrc}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"NPD", "demo.c:5", "probe", "validated"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFPRateHint(t *testing.T) {
	res, err := AnalyzeSources("m", map[string]string{"a.c": `
void func(char *p) {
	int x = 3;
	if (x == 5) {
		if (!p)
			use(*p);
	}
	if (!p)
		use(*p);
}`}, Config{NoPrune: true, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if hint := res.FPRateHint(); hint <= 0 || hint >= 1 {
		t.Errorf("FPRateHint = %f, want in (0,1)", hint)
	}
}

func TestWitnessAndTriggerExposed(t *testing.T) {
	res, err := AnalyzeSources("demo", map[string]string{"demo.c": `
struct dev { int flags; };
int probe(struct dev *d, int n) {
	if (n > 3) {
		if (!d)
			return d->flags;
	}
	return 0;
}`}, Config{WitnessPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 {
		t.Fatalf("bugs = %d", len(res.Bugs))
	}
	b := res.Bugs[0]
	if len(b.Witness) == 0 {
		t.Error("witness path not rendered")
	}
	joined := strings.Join(b.Trigger, " ")
	if !strings.Contains(joined, "d = 0") || !strings.Contains(joined, "n = 4") {
		t.Errorf("trigger = %v", b.Trigger)
	}
	if len(b.AliasSet) == 0 {
		t.Error("alias set missing")
	}
}
