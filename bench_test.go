package pata_test

// One benchmark per evaluation table and figure of the paper, plus
// substrate micro-benchmarks and ablations for the design choices called
// out in DESIGN.md. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The printed tables come from cmd/patabench; these benchmarks measure the
// cost of regenerating each one.

import (
	"fmt"
	"io"
	"testing"

	pata "repro"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/minicc"
	"repro/internal/oscorpus"
	"repro/internal/pathval"
	"repro/internal/smt"
	"repro/internal/typestate"
)

// ---- Table and figure benchmarks ----

// BenchmarkTable4Corpus regenerates Table 4 (corpus generation for the four
// OSes).
func BenchmarkTable4Corpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Table4(io.Discard)
	}
}

// BenchmarkTable5Pipeline regenerates Table 5 (full PATA: Stage 1 + Stage 2
// over all four corpora, with the typestate/constraint cost counters).
func BenchmarkTable5Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Distribution regenerates Figure 11 (bug distribution by OS
// part).
func BenchmarkFig11Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Sensitivity regenerates Table 6 (PATA vs PATA-NA).
func BenchmarkTable6Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7ExtraCheckers regenerates Table 7 (DL/AIU/DBZ checkers).
func BenchmarkTable7ExtraCheckers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8Comparison regenerates Table 8 (all baselines vs PATA on
// all corpora).
func BenchmarkTable8Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPAudit regenerates the §5.2 false-positive cause audit.
func BenchmarkFPAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.FPAudit(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCases regenerates the Figure 1/3/9/12 case studies.
func BenchmarkCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Cases(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkFrontendLinuxCorpus measures mini-C parsing+lowering of the
// linux-like corpus (the Clang-equivalent P1 cost).
func BenchmarkFrontendLinuxCorpus(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minicc.LowerAll(c.Spec.Name, c.Sources); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage1LinuxCorpus measures Stage 1 alone (path-sensitive alias +
// typestate analysis, no validation) on the linux-like corpus.
func BenchmarkStage1LinuxCorpus(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(mod, core.Config{Checkers: typestate.CoreCheckers()})
		eng.Run()
	}
}

// BenchmarkStage2Validation measures Stage 2 alone: SMT validation of the
// Stage-1 candidates of the linux-like corpus.
func BenchmarkStage2Validation(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	res := core.NewEngine(mod, core.Config{Checkers: typestate.CoreCheckers()}).Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := pathval.New()
		for _, pb := range res.Possible {
			v.Validate(pb, core.ModePATA)
		}
	}
}

// BenchmarkSMTSolver measures the SMT-lite solver on a representative
// path-constraint conjunction.
func BenchmarkSMTSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := smt.NewContext()
		s := smt.NewSolver(ctx)
		x, y, z := ctx.Var("x"), ctx.Var("y"), ctx.Var("z")
		f := smt.And(
			smt.Eq(x, smt.Add(y, smt.Int(1))),
			smt.Ge(y, smt.Int(0)),
			smt.Le(z, smt.Int(100)),
			smt.Lt(smt.Add(x, z), smt.Int(50)),
			smt.Ne(x, smt.Int(0)),
		)
		if s.Solve(f) != smt.Sat {
			b.Fatal("unexpected verdict")
		}
	}
}

// BenchmarkPublicAPI measures the end-to-end public entry point on a small
// program (what a library user pays per file).
func BenchmarkPublicAPI(b *testing.B) {
	src := map[string]string{"demo.c": `
struct dev { int flags; };
int probe(struct dev *d) {
	if (!d)
		return d->flags;
	return 0;
}`}
	for i := 0; i < b.N; i++ {
		if _, err := pata.AnalyzeSources("demo", src, pata.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benchmarks (design choices from DESIGN.md) ----

// BenchmarkAblationAliasMode compares Stage-1 cost of path-based aliasing
// vs the PATA-NA restriction (the paper's Table 6 time column).
func BenchmarkAblationAliasMode(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		mode core.Mode
	}{{"pata", core.ModePATA}, {"na", core.ModeNoAlias}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewEngine(mod, core.Config{
					Checkers: typestate.CoreCheckers(), Mode: bc.mode,
				}).Run()
			}
		})
	}
}

// BenchmarkAblationContinuations varies the P2 path-explosion mitigation
// (callee paths continuing into the caller).
func BenchmarkAblationContinuations(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 8, -1} {
		name := "unlimited"
		switch k {
		case 1:
			name = "k1"
		case 2:
			name = "k2"
		case 8:
			name = "k8"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.Config{Checkers: typestate.CoreCheckers()}
			cfg.MaxContinuationsPerCall = k
			for i := 0; i < b.N; i++ {
				core.NewEngine(mod, cfg).Run()
			}
		})
	}
}

// BenchmarkAblationValidation compares the full pipeline with and without
// Stage-2 validation (cost of the paper's C3 answer).
func BenchmarkAblationValidation(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("novalidate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewEngine(mod, core.Config{Checkers: typestate.CoreCheckers()}).Run()
		}
	})
	b.Run("validate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := core.Config{Checkers: typestate.CoreCheckers()}
			pathval.New().Install(&cfg)
			core.NewEngine(mod, cfg).Run()
		}
	})
}

// BenchmarkScaling measures full-pipeline cost at growing corpus sizes
// (linux-like corpus scaled 1x/2x/4x): evidence that the per-entry path
// budget keeps the analysis near-linear in code size, the property that
// lets the paper analyze 10.3M LoC.
func BenchmarkScaling(b *testing.B) {
	for _, factor := range []int{1, 2, 4} {
		spec := oscorpus.Scaled(oscorpus.LinuxSpec(), factor)
		c := oscorpus.Generate(spec)
		mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{1: "x1", 2: "x2", 4: "x4"}[factor], func(b *testing.B) {
			b.ReportMetric(float64(c.Lines), "loc")
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Checkers: typestate.CoreCheckers()}
				pathval.New().Install(&cfg)
				core.NewEngine(mod, cfg).Run()
			}
		})
	}
}

// BenchmarkAblationLoopUnroll varies the §7 loop-unroll extension (K visits
// per instruction per path; the paper's default is 1).
func BenchmarkAblationLoopUnroll(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "k1", 2: "k2", 3: "k3"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewEngine(mod, core.Config{
					Checkers: typestate.CoreCheckers(), LoopUnroll: k,
				}).Run()
			}
		})
	}
}

// BenchmarkParallelWorkers measures entry-level parallelism of Stage 1+2 on
// the 4x linux-like corpus.
func BenchmarkParallelWorkers(b *testing.B) {
	c := oscorpus.Generate(oscorpus.Scaled(oscorpus.LinuxSpec(), 4))
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Checkers: typestate.CoreCheckers()}
				pathval.New().Install(&cfg)
				core.RunParallel(mod, cfg, w)
			}
		})
	}
}

// BenchmarkRunParallelPipeline measures the pipelined two-stage scheduler on
// the 4x linux-like corpus across the Stage-1 workers × Stage-2 validation
// workers grid. With w>1 the work-stealing scheduler spreads entry functions
// over the workers; with v>1 candidate bugs stream into the validator pool
// while exploration is still running, overlapping SMT solving with Stage 1.
// Output is byte-identical to the sequential engine at every grid point
// (TestRunParallelByteIdentical); only wall-clock moves.
func BenchmarkRunParallelPipeline(b *testing.B) {
	c := oscorpus.Generate(oscorpus.Scaled(oscorpus.LinuxSpec(), 4))
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		for _, v := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("w%d-v%d", w, v), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := core.Config{Checkers: typestate.CoreCheckers(), ValidateWorkers: v}
					pathval.New().Install(&cfg)
					core.RunParallel(mod, cfg, w)
				}
			})
		}
	}
}

// BenchmarkValidatorCache measures the Stage-2 verdict cache: "cold" pays a
// fresh validator (every constraint system solved), "warm" revalidates the
// same candidates against an already-populated cache (every solve is a
// lookup of the memoized verdict and model).
func BenchmarkValidatorCache(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	res := core.NewEngine(mod, core.Config{Checkers: typestate.CoreCheckers()}).Run()
	if len(res.Possible) == 0 {
		b.Fatal("no candidates")
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := pathval.New()
			for _, pb := range res.Possible {
				v.Validate(pb, core.ModePATA)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		v := pathval.New()
		for _, pb := range res.Possible {
			v.Validate(pb, core.ModePATA)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, pb := range res.Possible {
				v.Validate(pb, core.ModePATA)
			}
		}
	})
}

// BenchmarkPruningAblation compares Stage-1 cost with the on-the-fly
// pruning layers (incremental feasibility cursor + (block, state)
// memoization, the defaults) against the unpruned engine on the linux-like
// corpus. The found-bug set is identical in both variants
// (TestPruningEquivalence); only explored paths and wall-clock differ.
func BenchmarkPruningAblation(b *testing.B) {
	c := oscorpus.Generate(oscorpus.LinuxSpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("defaults", func(b *testing.B) {
		var paths int64
		for i := 0; i < b.N; i++ {
			res := core.NewEngine(mod, core.Config{Checkers: typestate.CoreCheckers()}).Run()
			paths = res.Stats.PathsExplored
		}
		b.ReportMetric(float64(paths), "paths")
	})
	b.Run("no-prune-no-memo", func(b *testing.B) {
		var paths int64
		for i := 0; i < b.N; i++ {
			res := core.NewEngine(mod, core.Config{
				Checkers: typestate.CoreCheckers(), NoPrune: true, NoMemo: true,
			}).Run()
			paths = res.Stats.PathsExplored
		}
		b.ReportMetric(float64(paths), "paths")
	})
}

// BenchmarkSummaryAblation compares Stage-1 cost with the interprocedural
// callee summaries (the default) against the summary-free engine on the
// helper-heavy corpus, whose clustered helper calls are the workload the
// summary cache targets. The found-bug set is identical in both variants
// (TestSummaryEquivalence); only executed steps and wall-clock differ.
func BenchmarkSummaryAblation(b *testing.B) {
	c := oscorpus.Generate(oscorpus.HelperHeavySpec())
	mod, err := minicc.LowerAll(c.Spec.Name, c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("defaults", func(b *testing.B) {
		var steps int64
		for i := 0; i < b.N; i++ {
			res := core.NewEngine(mod, core.Config{Checkers: typestate.CoreCheckers()}).Run()
			steps = res.Stats.StepsExecuted
		}
		b.ReportMetric(float64(steps), "steps")
	})
	b.Run("no-summaries", func(b *testing.B) {
		var steps int64
		for i := 0; i < b.N; i++ {
			res := core.NewEngine(mod, core.Config{
				Checkers: typestate.CoreCheckers(), NoSummaries: true,
			}).Run()
			steps = res.Stats.StepsExecuted
		}
		b.ReportMetric(float64(steps), "steps")
	})
}

// BenchmarkBenchPipeline regenerates the BENCH_pipeline.json grid (all
// corpora × workers {1,4} × engine variant) without writing the file.
func BenchmarkBenchPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.BenchPipeline(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensions regenerates the repo-extension experiment (UAF + API
// pairing checkers).
func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Extensions(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncremental regenerates the incremental-cache ablation (cold
// populate, warm replay, mutation sweep on the linux corpus) without
// writing BENCH_incremental.json.
func BenchmarkIncremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.IncrementalTable(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
